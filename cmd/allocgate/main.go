// allocgate is the CI allocation-budget gate: it parses `go test
// -bench -benchmem` output and compares each benchmark's allocs/op
// against the checked-in budget, exiting nonzero on any exceedance —
// the allocation analogue of the benchdiff throughput gate.
//
// Usage:
//
//	go test -run '^$' -bench '^BenchmarkAllocs' -benchmem | \
//	    allocgate -budget ALLOC_budget.json [-md summary.md]
//
// Regenerate the budget after an intentional change:
//
//	go test -run '^$' -bench '^BenchmarkAllocs' -benchmem | \
//	    allocgate -update ALLOC_budget.json
//
// The budget is a ceiling, not a snapshot: a cell measuring fewer
// allocations than budgeted passes (and is reported, so the budget can
// be tightened); one allocation over fails. Cells present in the budget
// but missing from the run fail too — losing coverage silently would
// hollow out the gate. New cells pass with a notice; commit a
// regenerated budget alongside the change that adds them.
//
// Allocation counts gate; bytes/op is recorded for context only (B/op
// can be nonzero at 0 allocs/op from amortized growth, and byte sizes
// shift with struct layout in ways that aren't regressions).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	budgetPath := flag.String("budget", "ALLOC_budget.json", "checked-in allocation budget to gate against")
	update := flag.String("update", "", "write a fresh budget to this path from the measured run instead of gating")
	newPath := flag.String("new", "", "read benchmark output from this file instead of stdin")
	mdPath := flag.String("md", "", "append a Markdown report to this file (CI passes $GITHUB_STEP_SUMMARY)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if *newPath != "" {
		f, err := os.Open(*newPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "allocgate: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	cells, err := ParseBench(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "allocgate: %v\n", err)
		os.Exit(2)
	}
	if len(cells) == 0 {
		fmt.Fprintln(os.Stderr, "allocgate: no -benchmem benchmark lines in input")
		os.Exit(2)
	}

	if *update != "" {
		if err := WriteBudget(*update, cells); err != nil {
			fmt.Fprintf(os.Stderr, "allocgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("allocgate: wrote %d cells to %s\n", len(cells), *update)
		return
	}

	budget, err := ReadBudget(*budgetPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "allocgate: %v\n", err)
		os.Exit(2)
	}
	rep := Compare(budget, cells)
	fmt.Print(rep.Text())
	if *mdPath != "" {
		f, err := os.OpenFile(*mdPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "allocgate: %v\n", err)
			os.Exit(2)
		}
		_, werr := f.WriteString(rep.Markdown())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "allocgate: writing %s: %v\n", *mdPath, werr)
			os.Exit(2)
		}
	}
	if rep.Failed() {
		os.Exit(1)
	}
}
