package main

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: bento
BenchmarkAllocs/Bento/read4k-8         	     200	       414.9 ns/op	       0 B/op	       0 allocs/op
BenchmarkAllocs/Bento/stat-8           	     200	       469.3 ns/op	       0 B/op	       0 allocs/op
BenchmarkAllocs/C-Kernel/create-8      	     200	     15883 ns/op	     755 B/op	       8 allocs/op
BenchmarkAllocs/FUSE/stat-8            	     200	      1084 ns/op	     336 B/op	       5 allocs/op
PASS
ok  	bento	2.733s
`

func TestParseBench(t *testing.T) {
	cells, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := []Cell{
		{Name: "BenchmarkAllocs/Bento/read4k", AllocsPerOp: 0, BytesPerOp: 0},
		{Name: "BenchmarkAllocs/Bento/stat", AllocsPerOp: 0, BytesPerOp: 0},
		{Name: "BenchmarkAllocs/C-Kernel/create", AllocsPerOp: 8, BytesPerOp: 755},
		{Name: "BenchmarkAllocs/FUSE/stat", AllocsPerOp: 5, BytesPerOp: 336},
	}
	if len(cells) != len(want) {
		t.Fatalf("parsed %d cells, want %d: %+v", len(cells), len(want), cells)
	}
	for i, w := range want {
		if cells[i] != w {
			t.Errorf("cell %d = %+v, want %+v", i, cells[i], w)
		}
	}
}

// TestParseBenchKeepsWorst: with -count N the same benchmark appears
// multiple times; the gate must use the worst measurement.
func TestParseBenchKeepsWorst(t *testing.T) {
	in := `BenchmarkAllocs/Bento/create-8  200  25000 ns/op  2600 B/op  48 allocs/op
BenchmarkAllocs/Bento/create-8  200  25100 ns/op  2700 B/op  52 allocs/op
BenchmarkAllocs/Bento/create-8  200  24900 ns/op  2500 B/op  47 allocs/op
`
	cells, err := ParseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].AllocsPerOp != 52 {
		t.Fatalf("cells = %+v, want one cell at 52 allocs/op", cells)
	}
}

func TestParseBenchNoGomaxprocsSuffix(t *testing.T) {
	// GOMAXPROCS=1 omits the -N suffix entirely.
	in := "BenchmarkAllocs/Ext4/stat  	 200	 359.2 ns/op	 0 B/op	 0 allocs/op\n"
	cells, err := ParseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].Name != "BenchmarkAllocs/Ext4/stat" {
		t.Fatalf("cells = %+v", cells)
	}
}

func TestCompareGate(t *testing.T) {
	budget := []Cell{
		{Name: "a/read", AllocsPerOp: 0},
		{Name: "a/create", AllocsPerOp: 10},
		{Name: "a/gone", AllocsPerOp: 3},
		{Name: "a/loose", AllocsPerOp: 9},
	}
	measured := []Cell{
		{Name: "a/read", AllocsPerOp: 1, BytesPerOp: 64}, // over: fail
		{Name: "a/create", AllocsPerOp: 10},              // exact: pass
		{Name: "a/loose", AllocsPerOp: 4},                // under: informational
		{Name: "a/new", AllocsPerOp: 2},                  // unbudgeted: informational
	}
	rep := Compare(budget, measured)
	if !rep.Failed() {
		t.Fatal("gate passed with an exceedance and a missing cell")
	}
	if len(rep.Exceeded) != 1 || rep.Exceeded[0].Name != "a/read" || rep.Exceeded[0].Actual != 1 {
		t.Errorf("Exceeded = %+v", rep.Exceeded)
	}
	if len(rep.Missing) != 1 || rep.Missing[0] != "a/gone" {
		t.Errorf("Missing = %+v", rep.Missing)
	}
	if len(rep.Under) != 1 || rep.Under[0].Name != "a/loose" {
		t.Errorf("Under = %+v", rep.Under)
	}
	if len(rep.Added) != 1 || rep.Added[0].Name != "a/new" {
		t.Errorf("Added = %+v", rep.Added)
	}
	if rep.Exact != 1 {
		t.Errorf("Exact = %d, want 1", rep.Exact)
	}
	text := rep.Text()
	if !strings.Contains(text, "EXCEEDED") || !strings.Contains(text, "FAIL") {
		t.Errorf("Text missing verdict markers:\n%s", text)
	}
	md := rep.Markdown()
	if !strings.Contains(md, "## allocgate: ❌ FAIL") || !strings.Contains(md, "| `a/read` | 1 | 0 | 64 |") {
		t.Errorf("Markdown missing table rows:\n%s", md)
	}
}

func TestCompareCleanRun(t *testing.T) {
	cells := []Cell{{Name: "x", AllocsPerOp: 0}, {Name: "y", AllocsPerOp: 7}}
	rep := Compare(cells, cells)
	if rep.Failed() {
		t.Fatalf("identical run failed the gate: %s", rep.Text())
	}
	if rep.Exact != 2 {
		t.Errorf("Exact = %d, want 2", rep.Exact)
	}
	if !strings.Contains(rep.Markdown(), "✅ OK") {
		t.Error("clean Markdown report missing OK verdict")
	}
}

func TestBudgetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "budget.json")
	cells := []Cell{
		{Name: "z/last", AllocsPerOp: 3, BytesPerOp: 100},
		{Name: "a/first", AllocsPerOp: 0, BytesPerOp: 0},
	}
	if err := WriteBudget(path, cells); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	// Written sorted by name.
	if len(got) != 2 || got[0].Name != "a/first" || got[1].Name != "z/last" {
		t.Fatalf("round trip = %+v", got)
	}
	if got[1].AllocsPerOp != 3 || got[1].BytesPerOp != 100 {
		t.Errorf("cell values lost: %+v", got[1])
	}
}
