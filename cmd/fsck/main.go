// fsck checks an image produced by cmd/mkfs (or any tool using the same
// sparse "BIMG" format) for xv6 metadata consistency.
//
// Usage:
//
//	fsck [disk.img]    # default: disk.img
//
// The image is loaded into a simulated device and handed to
// layout.Fsck, the structural checker: superblock sanity, inode type
// and link-count validity, directory tree connectivity, block
// ownership (no double allocation, no use of free blocks), bitmap
// agreement, and an empty — i.e. fully recovered — journal. A summary
// line always prints; each inconsistency prints as an ERROR and the
// exit status is nonzero unless the image is clean.
//
// fsck assumes the log has already been recovered (mounting replays
// it); an image written mid-commit shows up as a non-empty-log error
// here, not silent corruption. The same checker is the structural leg
// of the crash-point fuzzer (internal/crashtort), which runs it after
// every simulated power cut — see docs/upgrade-and-crash.md.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"

	"bento/internal/blockdev"
	"bento/internal/costmodel"
	"bento/internal/vclock"
	"bento/internal/xv6/layout"
)

func main() {
	flag.Parse()
	path := "disk.img"
	if flag.NArg() > 0 {
		path = flag.Arg(0)
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsck:", err)
		os.Exit(1)
	}
	defer f.Close()
	var hdr [12]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || string(hdr[:4]) != "BIMG" {
		fmt.Fprintln(os.Stderr, "fsck: not a bento disk image")
		os.Exit(1)
	}
	blocks := int(binary.LittleEndian.Uint32(hdr[4:]))
	bs := int(binary.LittleEndian.Uint32(hdr[8:]))
	dev := blockdev.MustNew(blockdev.Config{Blocks: blocks, BlockSize: bs, Model: costmodel.Fast()})
	clk := vclock.NewClock()
	buf := make([]byte, bs)
	for {
		var rec [4]byte
		if _, err := io.ReadFull(f, rec[:]); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintln(os.Stderr, "fsck:", err)
			os.Exit(1)
		}
		b := int(binary.LittleEndian.Uint32(rec[:]))
		if _, err := io.ReadFull(f, buf); err != nil {
			fmt.Fprintln(os.Stderr, "fsck:", err)
			os.Exit(1)
		}
		if err := dev.Write(clk, b, buf); err != nil {
			fmt.Fprintln(os.Stderr, "fsck:", err)
			os.Exit(1)
		}
	}
	rep, err := layout.Fsck(clk, dev)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsck:", err)
		os.Exit(1)
	}
	fmt.Printf("fsck: %d inodes (%d dirs, %d files), %d/%d blocks used\n",
		rep.Inodes, rep.Dirs, rep.Files, rep.UsedBlocks, rep.TotalBlocks)
	if !rep.OK() {
		for _, e := range rep.Errors {
			fmt.Println("  ERROR:", e)
		}
		os.Exit(1)
	}
	fmt.Println("fsck: clean")
}
