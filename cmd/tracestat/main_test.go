package main

import (
	"os"
	"strings"
	"testing"
)

func readGolden(t *testing.T) cellStat {
	t.Helper()
	data, err := os.ReadFile("testdata/golden.trace.json")
	if err != nil {
		t.Fatal(err)
	}
	ct, err := parseTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	st, err := analyze(ct)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestGoldenBreakdownSumsToTotal(t *testing.T) {
	st := readGolden(t)
	if st.variant != "FUSE" || st.cell != "read-seq-1t-4k" || st.experiment != "fig2" {
		t.Fatalf("labels = %s/%s/%s", st.experiment, st.variant, st.cell)
	}
	// The worker "run" span is the only top-level span: 100µs.
	if st.total != 100000 {
		t.Fatalf("total = %d ns, want 100000", st.total)
	}
	want := map[string]int64{
		// run(100000) minus the three nested syscalls (20000+8000+2000).
		"worker": 70000,
		// (20000-16000 under the fuse round-trip) + 8000 + 2000.
		"syscall": 14000,
		// round-trip 16000 minus the nested 10000 device read.
		"fuse":   6000,
		"device": 10000,
	}
	var sum int64
	for cat, v := range st.excl {
		sum += v
		if want[cat] != v {
			t.Errorf("excl[%q] = %d, want %d", cat, v, want[cat])
		}
	}
	if len(st.excl) != len(want) {
		t.Errorf("categories = %v, want %v", st.excl, want)
	}
	// The acceptance contract: the breakdown sums exactly to the cell's
	// total virtual time.
	if sum != st.total {
		t.Fatalf("Σ exclusive = %d, total = %d", sum, st.total)
	}
}

func TestGoldenBreakdownPercentages(t *testing.T) {
	st := readGolden(t)
	out := breakdownText([]cellStat{st})
	for _, frag := range []string{"70.0%", "14.0%", "6.0%", "10.0%", "0.100"} {
		if !strings.Contains(out, frag) {
			t.Errorf("breakdown missing %q:\n%s", frag, out)
		}
	}
	md := breakdownMarkdown([]cellStat{st})
	if !strings.Contains(md, "| `fig2/FUSE/read-seq-1t-4k` | 0.100 |") {
		t.Errorf("markdown breakdown row malformed:\n%s", md)
	}
}

func TestGoldenHistogram(t *testing.T) {
	st := readGolden(t)
	if got := st.opDurs["pread"]; len(got) != 2 {
		t.Fatalf("pread durations = %v, want 2 entries", got)
	}
	hists := collectHists([]cellStat{st})
	if len(hists) != 2 { // fstat, pread (sorted)
		t.Fatalf("got %d histograms, want 2", len(hists))
	}
	pread := hists[1]
	if pread.op != "pread" || pread.durs[0] != 8000 || pread.durs[1] != 20000 {
		t.Fatalf("pread hist = %+v", pread)
	}
	if p50 := percentile(pread.durs, 50); p50 != 8000 {
		t.Fatalf("p50 = %d, want 8000", p50)
	}
	out := histogramsText([]cellStat{st})
	if !strings.Contains(out, "[16.384µs,32.768µs)") || !strings.Contains(out, "[4.096µs,8.192µs)") {
		t.Errorf("histogram buckets missing:\n%s", out)
	}
}

func TestBucketing(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{{0, 0}, {1, 1}, {2, 2}, {1023, 10}, {1024, 11}, {8000, 13}, {20000, 15}}
	for _, c := range cases {
		if got := bucketOf(c.ns); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	if bucketLabel(0) != "0" {
		t.Errorf("bucketLabel(0) = %q", bucketLabel(0))
	}
	if got := bucketLabel(11); got != "[1.024µs,2.048µs)" {
		t.Errorf("bucketLabel(11) = %q", got)
	}
}

func TestMalformedInputs(t *testing.T) {
	cases := map[string]string{
		"invalid JSON":   `{`,
		"missing labels": `{"otherData":{},"traceEvents":[]}`,
		"span without category": `{"otherData":{"cell":"c","variant":"v"},"traceEvents":[
			{"name":"x","ph":"X","tid":0,"ts":0,"dur":1}]}`,
		"negative duration": `{"otherData":{"cell":"c","variant":"v"},"traceEvents":[
			{"name":"x","cat":"syscall","ph":"X","tid":0,"ts":0,"dur":-1}]}`,
	}
	for name, in := range cases {
		if _, err := parseTrace([]byte(in)); err == nil {
			t.Errorf("%s: parseTrace accepted malformed input", name)
		}
	}
	// Overlapping-but-not-nested spans on one track are rejected by the
	// stack sweep, not the parser.
	ct, err := parseTrace([]byte(`{"otherData":{"cell":"c","variant":"v"},"traceEvents":[
		{"name":"a","cat":"syscall","ph":"X","tid":0,"ts":0,"dur":10},
		{"name":"b","cat":"syscall","ph":"X","tid":0,"ts":5,"dur":10}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := analyze(ct); err == nil || !strings.Contains(err.Error(), "straddles") {
		t.Errorf("analyze accepted straddling spans (err=%v)", err)
	}
}
