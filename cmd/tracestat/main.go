// tracestat analyzes the Chrome/Perfetto trace files written by
// `bentobench -trace <dir>` and answers the paper's Figure-2 question
// from data: where did each cell's virtual time go?
//
// Usage:
//
//	bentobench -quick -trace traces/
//	tracestat traces/                      # breakdown table for every cell
//	tracestat -hist traces/fig2_FUSE_*.json  # add per-op latency histograms
//	tracestat -md traces/ >> "$GITHUB_STEP_SUMMARY"
//
// Arguments are trace files or directories (scanned non-recursively for
// *.trace.json). Two reports are rendered:
//
//   - The breakdown table: per cell, the exclusive virtual time spent in
//     each span category — syscall / cache / journal / device / daemon /
//     fuse / upgrade / app — as a percentage of the cell's total virtual span
//     time. "app" is the benchmark worker's own time (the worker span
//     minus everything nested inside it). Exclusive time is computed by
//     a per-track stack sweep over the properly-nested spans, so the
//     categories sum exactly to the total.
//
//   - Per-op latency histograms (-hist): for each (variant, op), the
//     distribution of syscall span durations in power-of-two buckets,
//     with exact count/p50/p99/max from the recorded durations.
//
// The input traces are byte-deterministic, so both reports are too.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/bits"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	md := flag.Bool("md", false, "render GitHub-flavored Markdown instead of plain text")
	hist := flag.Bool("hist", false, "include per-op latency histograms (syscall spans)")
	require := flag.String("require", "", "comma-separated span/instant names that must appear at least once across the input traces; exit 1 otherwise")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "tracestat: no trace files or directories given")
		flag.Usage()
		os.Exit(2)
	}
	paths, err := expandArgs(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
		os.Exit(2)
	}
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "tracestat: no *.trace.json files found")
		os.Exit(2)
	}
	var cells []cellStat
	nameCounts := map[string]int{}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracestat: %v\n", err)
			os.Exit(2)
		}
		ct, err := parseTrace(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracestat: %s: %v\n", p, err)
			os.Exit(2)
		}
		st, err := analyze(ct)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracestat: %s: %v\n", p, err)
			os.Exit(2)
		}
		cells = append(cells, st)
		for name, n := range ct.names {
			nameCounts[name] += n
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].key() < cells[j].key() })
	if *require != "" {
		missing := false
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if n := nameCounts[name]; n == 0 {
				fmt.Fprintf(os.Stderr, "tracestat: required event %q absent from %d trace file(s)\n", name, len(paths))
				missing = true
			} else {
				fmt.Fprintf(os.Stderr, "tracestat: required event %q: %d occurrence(s)\n", name, n)
			}
		}
		if missing {
			os.Exit(1)
		}
	}
	if *md {
		fmt.Print(breakdownMarkdown(cells))
		if *hist {
			fmt.Print(histogramsMarkdown(cells))
		}
	} else {
		fmt.Print(breakdownText(cells))
		if *hist {
			fmt.Print(histogramsText(cells))
		}
	}
}

// expandArgs resolves files and directories (one level: *.trace.json)
// into a sorted, de-duplicated path list.
func expandArgs(args []string) ([]string, error) {
	var out []string
	seen := map[string]bool{}
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, a := range args {
		fi, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !fi.IsDir() {
			add(a)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(a, "*.trace.json"))
		if err != nil {
			return nil, err
		}
		for _, m := range matches {
			add(m)
		}
	}
	sort.Strings(out)
	return out, nil
}

// breakdownCats is the column order of the report. "worker" renders as
// "app": its exclusive time is what the benchmark loop itself spent.
var breakdownCats = []string{"syscall", "cache", "journal", "device", "net", "daemon", "fuse", "upgrade", "worker"}

func catLabel(c string) string {
	if c == "worker" {
		return "app"
	}
	return c
}

// span is one "X" event recovered from a trace file.
type span struct {
	tid   int
	cat   string
	name  string
	start int64 // virtual ns
	dur   int64 // virtual ns
}

// cellTrace is one parsed trace file.
type cellTrace struct {
	experiment, variant, cell string
	spans                     []span
	// names counts span ("X") and instant ("i") events by name, for
	// the -require presence check.
	names map[string]int
}

// parseTrace decodes one Chrome trace-event JSON file, keeping the "X"
// (complete span) events for the breakdown; instant ("i") events carry
// no duration but are tallied by name alongside spans so -require can
// assert their presence. Timestamps are microseconds with nanosecond
// precision; they are recovered exactly via round(ts*1000).
func parseTrace(data []byte) (cellTrace, error) {
	var raw struct {
		OtherData   map[string]string `json:"otherData"`
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return cellTrace{}, fmt.Errorf("not a trace-event JSON file: %w", err)
	}
	ct := cellTrace{
		experiment: raw.OtherData["experiment"],
		variant:    raw.OtherData["variant"],
		cell:       raw.OtherData["cell"],
		names:      map[string]int{},
	}
	if ct.variant == "" || ct.cell == "" {
		return cellTrace{}, fmt.Errorf("missing otherData variant/cell labels (not written by bentobench -trace?)")
	}
	for _, e := range raw.TraceEvents {
		if e.Ph == "i" {
			ct.names[e.Name]++
			continue
		}
		if e.Ph != "X" {
			continue
		}
		ct.names[e.Name]++
		if e.Cat == "" {
			return cellTrace{}, fmt.Errorf("span %q has no category", e.Name)
		}
		s := span{
			tid:   e.Tid,
			cat:   e.Cat,
			name:  e.Name,
			start: int64(math.Round(e.Ts * 1000)),
			dur:   int64(math.Round(e.Dur * 1000)),
		}
		if s.dur < 0 || s.start < 0 {
			return cellTrace{}, fmt.Errorf("span %q has negative time (ts=%v dur=%v)", e.Name, e.Ts, e.Dur)
		}
		ct.spans = append(ct.spans, s)
	}
	return ct, nil
}

// cellStat is the analysis of one cell: exclusive ns per category, the
// total (sum of top-level span durations), and per-op syscall latencies.
type cellStat struct {
	experiment, variant, cell string
	excl                      map[string]int64
	total                     int64
	opDurs                    map[string][]int64 // syscall name -> span durations
}

func (c cellStat) key() string {
	return c.experiment + "/" + c.variant + "/" + c.cell
}

// analyze computes exclusive time per category with a stack sweep over
// each track's spans. Spans on a track are properly nested (task clocks
// are monotonic), so sorting by (start asc, dur desc) visits parents
// before their children and a stack models containment exactly:
// exclusive(span) = dur − Σ dur(direct children), and the per-category
// exclusive totals sum to the total top-level duration by telescoping.
func analyze(ct cellTrace) (cellStat, error) {
	st := cellStat{
		experiment: ct.experiment,
		variant:    ct.variant,
		cell:       ct.cell,
		excl:       map[string]int64{},
		opDurs:     map[string][]int64{},
	}
	byTrack := map[int][]span{}
	for _, s := range ct.spans {
		byTrack[s.tid] = append(byTrack[s.tid], s)
		if s.cat == "syscall" {
			st.opDurs[s.name] = append(st.opDurs[s.name], s.dur)
		}
	}
	for _, spans := range byTrack {
		sort.SliceStable(spans, func(i, j int) bool {
			if spans[i].start != spans[j].start {
				return spans[i].start < spans[j].start
			}
			return spans[i].dur > spans[j].dur
		})
		type frame struct {
			s        span
			childDur int64
		}
		var stack []frame
		pop := func() error {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			ex := f.s.dur - f.childDur
			if ex < 0 {
				return fmt.Errorf("spans on track %d are not properly nested at %q (children overrun parent by %dns)", f.s.tid, f.s.name, -ex)
			}
			st.excl[f.s.cat] += ex
			return nil
		}
		for _, s := range spans {
			for len(stack) > 0 && stack[len(stack)-1].s.start+stack[len(stack)-1].s.dur <= s.start {
				if err := pop(); err != nil {
					return cellStat{}, err
				}
			}
			if len(stack) > 0 {
				top := &stack[len(stack)-1]
				if s.start+s.dur > top.s.start+top.s.dur {
					return cellStat{}, fmt.Errorf("span %q [%d,%d) straddles the end of %q on track %d",
						s.name, s.start, s.start+s.dur, top.s.name, s.tid)
				}
				top.childDur += s.dur
			} else {
				st.total += s.dur
			}
			stack = append(stack, frame{s: s})
		}
		for len(stack) > 0 {
			if err := pop(); err != nil {
				return cellStat{}, err
			}
		}
	}
	return st, nil
}

// fmtMS renders virtual ns as milliseconds.
func fmtMS(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }

// pct renders part/total as a percentage ("-" when zero).
func pct(part, total int64) string {
	if part == 0 || total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}

func breakdownText(cells []cellStat) string {
	var b strings.Builder
	b.WriteString("== where the virtual time went (exclusive time per category) ==\n")
	fmt.Fprintf(&b, "%-10s %-10s %-22s %12s", "experiment", "variant", "cell", "total-ms")
	for _, c := range breakdownCats {
		fmt.Fprintf(&b, " %8s", catLabel(c))
	}
	b.WriteByte('\n')
	for _, st := range cells {
		fmt.Fprintf(&b, "%-10s %-10s %-22s %12s", st.experiment, st.variant, st.cell, fmtMS(st.total))
		for _, c := range breakdownCats {
			fmt.Fprintf(&b, " %8s", pct(st.excl[c], st.total))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func breakdownMarkdown(cells []cellStat) string {
	var b strings.Builder
	b.WriteString("## tracestat: where the virtual time went\n\n")
	b.WriteString("Exclusive virtual time per span category, as a share of each cell's total.\n\n")
	b.WriteString("| cell | total ms |")
	for _, c := range breakdownCats {
		fmt.Fprintf(&b, " %s |", catLabel(c))
	}
	b.WriteString("\n|---|---:|")
	b.WriteString(strings.Repeat("---:|", len(breakdownCats)))
	b.WriteByte('\n')
	for _, st := range cells {
		fmt.Fprintf(&b, "| `%s` | %s |", st.key(), fmtMS(st.total))
		for _, c := range breakdownCats {
			fmt.Fprintf(&b, " %s |", pct(st.excl[c], st.total))
		}
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	return b.String()
}

// opHist is one (variant, op) latency distribution aggregated across
// the input cells.
type opHist struct {
	variant, op string
	durs        []int64
}

func collectHists(cells []cellStat) []opHist {
	byKey := map[string]*opHist{}
	var keys []string
	for _, st := range cells {
		for op, durs := range st.opDurs {
			k := st.variant + "\x00" + op
			h, ok := byKey[k]
			if !ok {
				h = &opHist{variant: st.variant, op: op}
				byKey[k] = h
				keys = append(keys, k)
			}
			h.durs = append(h.durs, durs...)
		}
	}
	sort.Strings(keys)
	out := make([]opHist, 0, len(keys))
	for _, k := range keys {
		h := byKey[k]
		sort.Slice(h.durs, func(i, j int) bool { return h.durs[i] < h.durs[j] })
		out = append(out, *h)
	}
	return out
}

// bucketOf maps a duration to its power-of-two histogram bucket index:
// bucket i covers [2^(i-1), 2^i) ns, bucket 0 covers the single value 0.
func bucketOf(ns int64) int { return bits.Len64(uint64(ns)) }

// bucketLabel renders the range of bucket i in human units.
func bucketLabel(i int) string {
	if i == 0 {
		return "0"
	}
	return fmt.Sprintf("[%s,%s)", fmtNS(int64(1)<<(i-1)), fmtNS(int64(1)<<i))
}

func fmtNS(ns int64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%gms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%gµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%dns", ns)
}

// percentile reports the p-th percentile (nearest-rank) of sorted durs.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted) - 1) * p / 100
	return sorted[i]
}

func histogramsText(cells []cellStat) string {
	var b strings.Builder
	for _, h := range collectHists(cells) {
		fmt.Fprintf(&b, "\n== %s %s: n=%d p50=%s p99=%s max=%s ==\n",
			h.variant, h.op, len(h.durs),
			fmtNS(percentile(h.durs, 50)), fmtNS(percentile(h.durs, 99)), fmtNS(h.durs[len(h.durs)-1]))
		counts := map[int]int{}
		lo, hi := bucketOf(h.durs[0]), bucketOf(h.durs[len(h.durs)-1])
		peak := 0
		for _, d := range h.durs {
			counts[bucketOf(d)]++
			if c := counts[bucketOf(d)]; c > peak {
				peak = c
			}
		}
		for i := lo; i <= hi; i++ {
			bar := strings.Repeat("#", counts[i]*40/peak)
			fmt.Fprintf(&b, "%16s %8d %s\n", bucketLabel(i), counts[i], bar)
		}
	}
	return b.String()
}

func histogramsMarkdown(cells []cellStat) string {
	hists := collectHists(cells)
	if len(hists) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteString("<details><summary>Per-op latency (syscall spans, virtual time)</summary>\n\n")
	b.WriteString("| variant | op | n | p50 | p99 | max |\n|---|---|---:|---:|---:|---:|\n")
	for _, h := range hists {
		fmt.Fprintf(&b, "| %s | `%s` | %d | %s | %s | %s |\n",
			h.variant, h.op, len(h.durs),
			fmtNS(percentile(h.durs, 50)), fmtNS(percentile(h.durs, 99)), fmtNS(h.durs[len(h.durs)-1]))
	}
	b.WriteString("\n</details>\n\n")
	return b.String()
}
