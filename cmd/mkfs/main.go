// mkfs formats a simulated device image with an xv6 or ext4 file system
// and writes it to a host file, so disk tools (fsck, fsshell) can operate
// on persistent images.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"bento/internal/blockdev"
	"bento/internal/costmodel"
	"bento/internal/kernel"
	"bento/internal/vclock"
	"bento/internal/xv6/layout"
)

func main() {
	out := flag.String("o", "disk.img", "output image path")
	blocks := flag.Int("blocks", 65536, "device size in 4K blocks")
	ninodes := flag.Uint("ninodes", 4096, "inode table size")
	flag.Parse()

	model := costmodel.Fast()
	dev := blockdev.MustNew(blockdev.Config{Blocks: *blocks, Model: model})
	clk := vclock.NewClock()
	sb, err := layout.Mkfs(clk, dev, uint32(*ninodes))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mkfs:", err)
		os.Exit(1)
	}

	// Serialize the device contents (sparse: only non-zero blocks).
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mkfs:", err)
		os.Exit(1)
	}
	defer f.Close()
	k := kernel.New(model)
	task := k.NewTask("dump")
	buf := make([]byte, dev.BlockSize())
	zero := make([]byte, dev.BlockSize())
	var hdr [12]byte
	copy(hdr[:4], "BIMG")
	binary.LittleEndian.PutUint32(hdr[4:], uint32(*blocks))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(dev.BlockSize()))
	if _, err := f.Write(hdr[:]); err != nil {
		fmt.Fprintln(os.Stderr, "mkfs:", err)
		os.Exit(1)
	}
	written := 0
	for b := 0; b < *blocks; b++ {
		if err := dev.Read(task.Clk, b, buf); err != nil {
			fmt.Fprintln(os.Stderr, "mkfs:", err)
			os.Exit(1)
		}
		if string(buf) == string(zero) {
			continue
		}
		var rec [4]byte
		binary.LittleEndian.PutUint32(rec[:], uint32(b))
		if _, err := f.Write(rec[:]); err != nil {
			fmt.Fprintln(os.Stderr, "mkfs:", err)
			os.Exit(1)
		}
		if _, err := f.Write(buf); err != nil {
			fmt.Fprintln(os.Stderr, "mkfs:", err)
			os.Exit(1)
		}
		written++
	}
	fmt.Printf("mkfs: %s: %d blocks (%d used), %d inodes, data starts at block %d\n",
		*out, *blocks, written, sb.NInodes, sb.DataStart)
}
