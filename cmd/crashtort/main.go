// crashtort sweeps every crash point of the journal torture workload
// and reports the ones each variant fails to recover from.
//
// Usage:
//
//	crashtort                        # all variants, keep=0 and keep=1
//	crashtort -variant bento         # one variant
//	crashtort -keep 0                # one cache-retention value only
//	crashtort -nobarriers            # strip write ordering (expect failures)
//	crashtort -point bento/k=17/keep=0   # replay one crash point bit-for-bit
//	crashtort -selftest              # prove the harness catches broken ordering
//	crashtort -md                    # results as a markdown table (CI summary)
//
// A crash point id names (variant, command index, cache retention) —
// see internal/crashtort. The process exits nonzero if any swept point
// fails to recover, if a replayed -point fails, or if -selftest does
// NOT observe failures.
package main

import (
	"flag"
	"fmt"
	"os"

	"bento/internal/crashtort"
)

func main() {
	variant := flag.String("variant", "all", "variant to sweep: bento, vfs, ext4, or all")
	keep := flag.Float64("keep", -1, "volatile-cache retention at the cut, in [0,1]; -1 sweeps both extremes (0 and 1)")
	nobarriers := flag.Bool("nobarriers", false, "strip the variant's write-ordering discipline; a keep=0 sweep should then fail")
	point := flag.String("point", "", "replay a single crash point by id (e.g. bento/k=17/keep=0) and report its verdict")
	selftest := flag.Bool("selftest", false, "run the broken-ordering sweep (bento, nobarriers, keep=0) and FAIL unless it produces failures")
	md := flag.Bool("md", false, "emit the per-variant result table as markdown (for CI step summaries)")
	flag.Parse()

	if *point != "" {
		replay(*point)
		return
	}
	if *selftest {
		runSelftest()
		return
	}

	variants := crashtort.AllVariants
	if *variant != "all" {
		variants = []crashtort.Variant{crashtort.Variant(*variant)}
	}
	keeps := []float64{0, 1}
	if *keep >= 0 {
		keeps = []float64{*keep}
	}

	var results []crashtort.Result
	bad := false
	for _, v := range variants {
		for _, kp := range keeps {
			res, err := crashtort.Sweep(crashtort.Config{
				Variant: v, Keep: kp, NoBarriers: *nobarriers,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "crashtort: %s keep=%g: %v\n", v, kp, err)
				os.Exit(1)
			}
			results = append(results, res)
			if !res.OK() {
				bad = true
			}
		}
	}
	report(results, *md)
	if bad {
		os.Exit(1)
	}
}

func report(results []crashtort.Result, md bool) {
	if md {
		fmt.Println("| variant | keep | crash points | failures | verdict |")
		fmt.Println("|---|---|---|---|---|")
	}
	for _, res := range results {
		verdict := "pass"
		if !res.OK() {
			verdict = "FAIL"
		}
		if md {
			fmt.Printf("| %s | %g | %d | %d | %s |\n",
				res.Variant, res.Keep, res.Points, len(res.Failures), verdict)
		} else {
			fmt.Printf("%-6s keep=%g  %3d points  %3d failures  %s\n",
				res.Variant, res.Keep, res.Points, len(res.Failures), verdict)
		}
	}
	// Failure detail goes to stderr in both modes so the table stays clean.
	for _, res := range results {
		for _, f := range res.Failures {
			fmt.Fprintf(os.Stderr, "FAIL %s: %s\n", f.Point.ID(), f.Err)
		}
	}
}

func replay(id string) {
	p, err := crashtort.ParseID(id)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashtort: %v\n", err)
		os.Exit(1)
	}
	cfg := crashtort.Config{Variant: p.Variant, Keep: p.Keep, NoBarriers: p.NoBarriers}
	if err := crashtort.RunPoint(cfg, p.K); err != nil {
		fmt.Printf("FAIL %s: %v\n", p.ID(), err)
		os.Exit(1)
	}
	fmt.Printf("ok   %s: recovered\n", p.ID())
}

// runSelftest strips bentoimpl's FLUSH discipline and sweeps with an
// adversarial (keep=0) cache: fsync'd data must then be lost at many
// crash points. Zero failures would mean the harness can no longer
// detect broken journal ordering — so zero failures is the failure.
func runSelftest() {
	res, err := crashtort.Sweep(crashtort.Config{
		Variant: crashtort.Bento, Keep: 0, NoBarriers: true,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashtort: selftest: %v\n", err)
		os.Exit(1)
	}
	if res.OK() {
		fmt.Printf("SELFTEST FAIL: broken write ordering swept %d points with zero failures\n", res.Points)
		os.Exit(1)
	}
	fmt.Printf("selftest ok: broken ordering caught at %d/%d crash points (e.g. %s)\n",
		len(res.Failures), res.Points, res.Failures[0].Point.ID())
}
