// Package bento's top-level benchmarks regenerate every table and figure
// of the paper's evaluation through the harness, one testing.B benchmark
// per artifact. The figures of merit are virtual-time throughputs printed
// as custom metrics (vops/s, vMB/s, vsec) — b.N loops only repeat the
// measurement.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Full-scale runs for EXPERIMENTS.md use cmd/bentobench instead.
package bento

import (
	"testing"

	"bento/internal/filebench"
	"bento/internal/harness"
)

// benchOpts uses reduced scale so `go test -bench=.` completes in a few
// minutes; cmd/bentobench runs the full-scale version. Parallel is left
// at its default (runtime.NumCPU()): each experiment's cells execute on
// a host-worker pool, which shortens the wall-clock of a -bench run
// without changing any reported virtual-time metric (see
// harness.CellSpec — cells are isolated simulations, so host
// parallelism is outside the determinism contract).
func benchOpts() harness.Options { return harness.Quick() }

// reportCells publishes each variant's primary metric for a run.
func reportCells(b *testing.B, data map[string][]filebench.Result, variants []string, metric string) {
	b.Helper()
	for _, v := range variants {
		for _, r := range data[v] {
			switch metric {
			case "ops":
				b.ReportMetric(r.OpsPerSec(), v+"/"+r.Name+"_vops/s")
			case "mbps":
				b.ReportMetric(r.MBps(), v+"/"+r.Name+"_vMB/s")
			case "sec":
				b.ReportMetric(r.Elapsed.Seconds(), v+"/"+r.Name+"_vsec")
			}
		}
	}
}

// BenchmarkTable1BugAnalysis regenerates Table 1 (dataset + derived
// statistics; the work is the analysis itself).
func BenchmarkTable1BugAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := harness.Table1Text(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Comparison regenerates Table 2.
func BenchmarkTable2Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := harness.Table2Text(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig2Read4K regenerates Figure 2 (4 KB reads, ops/s).
func BenchmarkFig2Read4K(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, data, err := harness.Fig2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, data, harness.XV6Variants, "ops")
		}
	}
}

// BenchmarkFig3ReadLarge regenerates Figure 3 (32K–1024K reads, MBps).
func BenchmarkFig3ReadLarge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, data, err := harness.Fig3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, data, harness.XV6Variants, "mbps")
		}
	}
}

// BenchmarkFig4Write regenerates Figure 4 (writes, MBps).
func BenchmarkFig4Write(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, data, err := harness.Fig4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, data, harness.XV6Variants, "mbps")
		}
	}
}

// BenchmarkTable4Create regenerates Table 4 (create ops/s).
func BenchmarkTable4Create(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, data, err := harness.Table4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, data, harness.XV6Variants, "ops")
		}
	}
}

// BenchmarkTable5Delete regenerates Table 5 (delete ops/s).
func BenchmarkTable5Delete(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, data, err := harness.Table5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, data, harness.XV6Variants, "ops")
		}
	}
}

// BenchmarkStream runs the streaming scenario (cold sequential
// read/write pass, MBps) across all four variants — the workload where
// the in-kernel variants' read-ahead and background flusher show up and
// the FUSE baseline, which has neither, does not.
func BenchmarkStream(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, data, err := harness.Stream(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportCells(b, data, harness.AllVariants, "mbps")
		}
	}
}

// BenchmarkTable6Macro regenerates Table 6 (varmail, fileserver, untar)
// across all four variants including ext4.
func BenchmarkTable6Macro(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, data, err := harness.Table6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, v := range harness.AllVariants {
				rs := data[v]
				b.ReportMetric(rs[0].OpsPerSec(), v+"/varmail_vops/s")
				b.ReportMetric(rs[1].OpsPerSec(), v+"/fileserver_vops/s")
				b.ReportMetric(rs[2].Elapsed.Seconds(), v+"/untar_vsec")
			}
		}
	}
}
