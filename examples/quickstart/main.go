// Quickstart: register the xv6-on-Bento module with the simulated kernel,
// mount it on a fresh device, and do ordinary file I/O through the
// syscall layer — the smallest complete use of the public API.
package main

import (
	"fmt"
	"log"

	"bento/internal/blockdev"
	"bento/internal/costmodel"
	"bento/internal/kernel"
	"bento/internal/vclock"
	"bento/internal/xv6/bentoimpl"
	"bento/internal/xv6/layout"
)

func main() {
	// A kernel with the calibrated cost model, and a 64 MiB NVMe device.
	k := kernel.New(costmodel.Default())
	dev := blockdev.MustNew(blockdev.Config{Blocks: 16384})

	// mkfs, insert the module, mount.
	if _, err := layout.Mkfs(vclock.NewClock(), dev, 1024); err != nil {
		log.Fatal(err)
	}
	if err := bentoimpl.RegisterWith(k, "xv6", bentoimpl.Config{}); err != nil {
		log.Fatal(err)
	}
	task := k.NewTask("main")
	m, err := k.Mount(task, "xv6", "/", dev)
	if err != nil {
		log.Fatal(err)
	}

	// Ordinary file I/O.
	if err := m.Mkdir(task, "/docs"); err != nil {
		log.Fatal(err)
	}
	if err := m.WriteFile(task, "/docs/hello.txt", []byte("hello from xv6 on Bento\n")); err != nil {
		log.Fatal(err)
	}
	data, err := m.ReadFile(task, "/docs/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %s", data)

	ents, err := m.ReadDir(task, "/docs")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range ents {
		fmt.Printf("  %s ino=%d %s\n", e.Type, e.Ino, e.Name)
	}

	// Everything above advanced virtual, not wall-clock, time.
	if err := k.Unmount(task, "/"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("virtual time elapsed:", task.Clk.Now())

	// The disk is consistent: run fsck to prove it.
	rep, err := layout.Fsck(task.Clk, dev)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fsck: ok=%v inodes=%d\n", rep.OK(), rep.Inodes)
}
