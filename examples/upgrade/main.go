// Upgrade: the paper's §4.8 online-upgrade protocol in action — swap the
// running file-system implementation while an application holds an open
// file, with in-memory state carried across via the transfer API.
package main

import (
	"fmt"
	"log"

	"bento/internal/blockdev"
	"bento/internal/core"
	"bento/internal/costmodel"
	"bento/internal/fsapi"
	"bento/internal/kernel"
	"bento/internal/vclock"
	"bento/internal/xv6/bentoimpl"
	"bento/internal/xv6/layout"
)

func main() {
	k := kernel.New(costmodel.Default())
	dev := blockdev.MustNew(blockdev.Config{Blocks: 16384})
	if _, err := layout.Mkfs(vclock.NewClock(), dev, 1024); err != nil {
		log.Fatal(err)
	}
	if err := bentoimpl.RegisterWith(k, "xv6", bentoimpl.Config{}); err != nil {
		log.Fatal(err)
	}
	task := k.NewTask("app")
	m, err := k.Mount(task, "xv6", "/", dev)
	if err != nil {
		log.Fatal(err)
	}

	// The application opens a log file and starts writing.
	f, err := m.Open(task, "/app.log", fsapi.OCreate|fsapi.OWronly|fsapi.OAppend)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.Write(task, []byte("written by generation 0\n")); err != nil {
		log.Fatal(err)
	}
	if err := f.FSync(task); err != nil {
		log.Fatal(err)
	}

	// Operator upgrades the module — no unmount, no application restart.
	shim := m.FS().(*core.BentoFS)
	before := task.Clk.Now()
	if err := shim.Upgrade(task, bentoimpl.New(bentoimpl.Config{})); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("upgrade complete: generation %d, pause %v\n",
		shim.Generation(), task.Clk.Now()-before)

	// The same file descriptor keeps working on the new implementation.
	if _, err := f.Write(task, []byte("written by generation 1\n")); err != nil {
		log.Fatal(err)
	}
	if err := f.FSync(task); err != nil {
		log.Fatal(err)
	}
	if err := m.Close(task, f); err != nil {
		log.Fatal(err)
	}
	data, err := m.ReadFile(task, "/app.log")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(string(data))
}
