// Overlay: the paper's motivating Docker use case — layer a writable
// file system over a read-only base image using the composable
// file-system extension, stacked at the Bento file-operations API.
package main

import (
	"fmt"
	"log"

	"bento/internal/bentoks"
	"bento/internal/blockdev"
	"bento/internal/composefs"
	"bento/internal/core"
	"bento/internal/costmodel"
	"bento/internal/kernel"
	"bento/internal/vclock"
	"bento/internal/xv6/bentoimpl"
	"bento/internal/xv6/layout"
)

func main() {
	model := costmodel.Default()
	k := kernel.New(model)
	task := k.NewTask("main")

	// Each layer is an independent xv6 file system on its own device.
	newLayer := func() *bentoimpl.FS {
		dev := blockdev.MustNew(blockdev.Config{Blocks: 8192, Model: model})
		if _, err := layout.Mkfs(vclock.NewClock(), dev, 512); err != nil {
			log.Fatal(err)
		}
		fs := bentoimpl.New(bentoimpl.Config{})
		bc := kernel.NewBufferCache(dev, model, 0)
		if err := fs.Init(task, bentoks.NewSuperBlock(bc, nil)); err != nil {
			log.Fatal(err)
		}
		return fs
	}

	// The "container image": a read-only base layer.
	base := newLayer()
	img, err := base.Create(task, 1, "etc.conf")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := base.Write(task, img.Ino, 0, []byte("setting=default\n")); err != nil {
		log.Fatal(err)
	}

	// The container's writable layer, composed over the image.
	upper := newLayer()
	ov := composefs.New(upper, base)
	if err := core.Register(k, "overlay", func() core.FileSystem { return ov }); err != nil {
		log.Fatal(err)
	}
	anchor := blockdev.MustNew(blockdev.Config{Blocks: 64, Model: model})
	m, err := k.Mount(task, "overlay", "/", anchor)
	if err != nil {
		log.Fatal(err)
	}

	// Read from the image through the overlay.
	data, _ := m.ReadFile(task, "/etc.conf")
	fmt.Printf("base image:  %s", data)

	// The container modifies it: copy-up into the writable layer.
	if err := m.WriteFile(task, "/etc.conf", []byte("setting=customized\n")); err != nil {
		log.Fatal(err)
	}
	data, _ = m.ReadFile(task, "/etc.conf")
	fmt.Printf("container:   %s", data)

	// The base layer is untouched.
	buf := make([]byte, 64)
	n, _ := base.Read(task, img.Ino, 0, buf)
	fmt.Printf("still in base image: %s", buf[:n])
}
