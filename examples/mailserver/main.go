// Mailserver: the workload the paper's varmail macrobenchmark models —
// concurrent mail delivery with fsync-guarded appends — run against two
// variants (Bento in-kernel and FUSE) to show the transport penalty from
// application code's point of view.
package main

import (
	"fmt"
	"log"

	"bento/internal/filebench"
	"bento/internal/harness"
)

func main() {
	for _, variant := range []string{harness.VariantBento, harness.VariantFUSE} {
		tg, err := harness.NewTarget(variant, harness.Quick())
		if err != nil {
			log.Fatal(err)
		}
		res, err := filebench.Varmail(tg, filebench.MacroConfig{
			Threads: 8, Files: 32, MaxOps: 500,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %s\n", variant, res)
	}
	fmt.Println("\nthe gap is the cost of the user/kernel transport plus fsync-to-FLUSH")
}
