// BenchmarkAllocs is the allocation-budget suite: steady-state Go
// allocations per operation on the warm hot paths, per (variant × op)
// cell. Unlike the virtual-time benchmarks above, the figure of merit
// here is the host-side allocs/op column of -benchmem — GC pressure is
// host behaviour, the one axis the virtual clock cannot see. The
// contract (enforced by cmd/allocgate against ALLOC_budget.json in CI):
// warm-cache-hit reads and stats allocate nothing; writes and
// creates stay within a small fixed budget.
//
// Run:
//
//	go test -run '^$' -bench '^BenchmarkAllocs' -benchmem
//
// Regenerate the budget after an intentional change:
//
//	go test -run '^$' -bench '^BenchmarkAllocs' -benchmem | \
//	    go run ./cmd/allocgate -update ALLOC_budget.json
package bento

import (
	"fmt"
	"strconv"
	"testing"

	"bento/internal/filebench"
	"bento/internal/fsapi"
	"bento/internal/harness"
	"bento/internal/kernel"
)

// allocVariants are the rows of the allocation budget. The three
// in-kernel variants carry the zero-alloc warm-path contract; FUSE is
// measured too (its per-op request marshaling is part of the paper's
// asymmetry) but only gated against its own checked-in budget.
var allocVariants = []string{
	harness.VariantBento,
	harness.VariantCKernel,
	harness.VariantExt4,
	harness.VariantFUSE,
}

// allocTarget mounts a fresh variant for alloc measurement.
func allocTarget(b *testing.B, variant string) (filebench.Target, *kernel.Task) {
	b.Helper()
	o := harness.Quick()
	tg, err := harness.NewTarget(variant, o)
	if err != nil {
		b.Fatal(err)
	}
	return tg, tg.K.NewTask("allocbench")
}

// warmFile creates path with pages pages of data and reads it once so
// every page is cache-resident.
func warmFile(b *testing.B, tg filebench.Target, task *kernel.Task, path string, pages int) {
	b.Helper()
	data := make([]byte, pages*fsapi.PageSize)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if err := tg.M.WriteFile(task, path, data); err != nil {
		b.Fatal(err)
	}
	if _, err := tg.M.ReadFile(task, path); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkAllocs(b *testing.B) {
	for _, variant := range allocVariants {
		b.Run(variant, func(b *testing.B) {
			b.Run("read4k", func(b *testing.B) { benchAllocRead(b, variant) })
			b.Run("stat", func(b *testing.B) { benchAllocStat(b, variant) })
			b.Run("lookup", func(b *testing.B) { benchAllocLookup(b, variant) })
			b.Run("write4k", func(b *testing.B) { benchAllocWrite(b, variant) })
			b.Run("create", func(b *testing.B) { benchAllocCreate(b, variant) })
		})
	}
}

// benchAllocRead measures warm-cache-hit 4K reads: every page of the
// file is resident, so the loop exercises page-cache lookup + copy only.
func benchAllocRead(b *testing.B, variant string) {
	tg, task := allocTarget(b, variant)
	const pages = 256 // 1 MiB working file
	warmFile(b, tg, task, "/readfile", pages)
	f, err := tg.M.Open(task, "/readfile", fsapi.ORdonly)
	if err != nil {
		b.Fatal(err)
	}
	defer tg.M.Close(task, f)
	buf := make([]byte, fsapi.PageSize)
	b.ReportAllocs()
	b.ResetTimer()
	var off int64
	for i := 0; i < b.N; i++ {
		if _, err := f.PRead(task, buf, off); err != nil {
			b.Fatal(err)
		}
		off += fsapi.PageSize
		if off >= pages*fsapi.PageSize {
			off = 0
		}
	}
}

// benchAllocStat measures a warm stat: the dentry is cached and the
// vnode resident, so the loop is dcache hit + GetAttr.
func benchAllocStat(b *testing.B, variant string) {
	tg, task := allocTarget(b, variant)
	warmFile(b, tg, task, "/statfile", 1)
	if _, err := tg.M.Stat(task, "/statfile"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tg.M.Stat(task, "/statfile"); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAllocLookup measures a warm multi-component path walk (three
// dcache hits per op).
func benchAllocLookup(b *testing.B, variant string) {
	tg, task := allocTarget(b, variant)
	if err := tg.M.Mkdir(task, "/lkdir"); err != nil {
		b.Fatal(err)
	}
	if err := tg.M.Mkdir(task, "/lkdir/sub"); err != nil {
		b.Fatal(err)
	}
	warmFile(b, tg, task, "/lkdir/sub/file", 1)
	if _, err := tg.M.Stat(task, "/lkdir/sub/file"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tg.M.Stat(task, "/lkdir/sub/file"); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAllocWrite measures steady-state 4K overwrites of a warm file:
// pages are resident and repeatedly re-dirtied, so the loop pays page
// lookup + copy + dirty tracking, plus the amortized background
// write-back the dirty budget forces.
func benchAllocWrite(b *testing.B, variant string) {
	tg, task := allocTarget(b, variant)
	const pages = 256
	warmFile(b, tg, task, "/writefile", pages)
	f, err := tg.M.Open(task, "/writefile", fsapi.ORdwr)
	if err != nil {
		b.Fatal(err)
	}
	defer tg.M.Close(task, f)
	buf := make([]byte, fsapi.PageSize)
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var off int64
	for i := 0; i < b.N; i++ {
		if _, err := f.PWrite(task, buf, off); err != nil {
			b.Fatal(err)
		}
		off += fsapi.PageSize
		if off >= pages*fsapi.PageSize {
			off = 0
		}
	}
}

// benchAllocCreate measures the create+unlink pair (create, write one
// page, fsync, close, unlink) — the journaled metadata path. Deleting
// each file keeps the namespace and inode table at steady state no
// matter how large b.N grows.
func benchAllocCreate(b *testing.B, variant string) {
	tg, task := allocTarget(b, variant)
	if err := tg.M.Mkdir(task, "/createdir"); err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, fsapi.PageSize)
	// Pre-build the path names so the loop measures the kernel path, not
	// the benchmark's own string formatting. Names cycle over a fixed
	// window: the file is unlinked each iteration, so reuse is safe.
	const nameWindow = 1024
	names := make([]string, nameWindow)
	for i := range names {
		names[i] = "/createdir/f" + strconv.Itoa(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := names[i%nameWindow]
		f, err := tg.M.Open(task, p, fsapi.OCreate|fsapi.OWronly)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Write(task, payload); err != nil {
			b.Fatal(err)
		}
		if err := f.FSync(task); err != nil {
			b.Fatal(err)
		}
		if err := tg.M.Close(task, f); err != nil {
			b.Fatal(err)
		}
		if err := tg.M.Unlink(task, p); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = fmt.Sprintf // keep fmt available for debugging helpers
