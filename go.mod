module bento

go 1.22
